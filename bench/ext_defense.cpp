// Extension: adversary defenses, attacked vs defended.
//
// Three experiments, each the same workload run with the defense off and
// then on:
//
//   1. Spoofed SYN flood vs SYN cookies + deferred filter install. The
//      undefended server burns its accept backlog on half-open TCBs and
//      lets the flood fill the NIC's 8k exact-match filter table; the
//      defended server answers floods statelessly (no TCB, no filter until
//      the cookie-ACK validates) and keeps serving.
//   2. Slowloris vs web-server header deadlines. Undefended, every holder
//      parks on the server for the whole run; defended, a holder lives at
//      most first_byte/header-deadline before it is closed, so the standing
//      holder population stays bounded.
//   3. Live connection migration vs restart-based recovery. Replica-to-
//      replica migration churn under load measures the connection blackout
//      (NIC capture window open -> filters repointed + frames replayed);
//      the comparison run crashes a replica and measures the supervisor's
//      crash-to-first-service latency. Migration should be orders of
//      magnitude quicker — that is why scale-down can drain immediately.
//
// Usage: ext_defense [--quick]
//
// Exit code is non-zero when the defense contract fails: defended SYN-flood
// goodput must be >= 5x the attacked-undefended goodput, slowloris deadline
// closes must fire with the defense on, and the migration p99 blackout must
// beat the restart-recovery p50.
#include <algorithm>
#include <string>

#include "bench_util.hpp"
#include "wl/scenario.hpp"

using namespace neat;
using namespace neat::bench;

namespace {

using wl::AdversarySpec;
using wl::Scenario;
using wl::ScenarioResult;
using wl::TenantSpec;

TenantSpec victim_tenant(double rate) {
  TenantSpec t;
  t.name = "web";
  t.arrival = wl::ArrivalModel::poisson(rate);
  t.session.requests_per_session = 1;
  t.session.abandon_after = 1 * sim::kSecond;
  t.sizes = wl::SizeModel::fixed_size(256);
  t.catalog_files = 1;
  t.slo = 5 * sim::kMillisecond;
  return t;
}

Scenario syn_flood_scenario(bool quick, bool defended) {
  Scenario sc;
  sc.name = defended ? "syn_flood_defended" : "syn_flood_attacked";
  sc.replicas = 2;
  sc.tracking_filters = true;
  sc.fin_retire_linger = 150 * sim::kMillisecond;
  sc.measure = quick ? 300 * sim::kMillisecond : 600 * sim::kMillisecond;
  const double f = quick ? 0.5 : 1.0;
  sc.tenants.push_back(victim_tenant(8000 * f));
  AdversarySpec a;
  a.kind = AdversarySpec::Kind::kSynFlood;
  a.rate = 240000 * f;
  // Start inside warmup so the whole measured window is under attack.
  a.start_at = 100 * sim::kMillisecond;
  sc.adversaries.push_back(a);
  if (defended) {
    sc.syn_cookies = true;
    sc.defer_syn_filters = true;
  }
  return sc;
}

Scenario slowloris_scenario(bool quick, bool defended) {
  Scenario sc;
  sc.name = defended ? "slowloris_defended" : "slowloris_attacked";
  sc.replicas = 2;
  sc.measure = quick ? 300 * sim::kMillisecond : 600 * sim::kMillisecond;
  const double f = quick ? 0.5 : 1.0;
  sc.tenants.push_back(victim_tenant(8000 * f));
  AdversarySpec a;
  a.kind = AdversarySpec::Kind::kSlowloris;
  a.connections = quick ? 128 : 256;
  a.start_at = 200 * sim::kMillisecond;
  sc.adversaries.push_back(a);
  if (defended) {
    sc.http_first_byte_deadline = 30 * sim::kMillisecond;
    sc.http_header_deadline = 50 * sim::kMillisecond;
  }
  return sc;
}

double tenant_goodput(const ScenarioResult& r) {
  return r.tenants.empty() ? 0.0 : r.tenants[0].goodput_mbps;
}

void print_scenario(const ScenarioResult& r) {
  const auto& t = r.tenants[0];
  std::printf(
      "%-22s krps=%7.1f goodput=%7.2fMbps p99=%7.2fms completed=%llu "
      "failed=%llu\n",
      r.name.c_str(), t.krps, t.goodput_mbps, t.p99_ms,
      static_cast<unsigned long long>(t.sessions_completed),
      static_cast<unsigned long long>(t.sessions_failed));
  std::printf(
      "  filters: peak=%llu end=%llu evicted=%llu | cookies: sent=%llu "
      "accepted=%llu rejected=%llu | loris_held=%llu deadline_closes=%llu\n",
      static_cast<unsigned long long>(r.server_flow_filters_peak),
      static_cast<unsigned long long>(r.server_flow_filters_end),
      static_cast<unsigned long long>(r.server_filter_evictions),
      static_cast<unsigned long long>(r.syn_cookies_sent),
      static_cast<unsigned long long>(r.syn_cookies_accepted),
      static_cast<unsigned long long>(r.syn_cookies_rejected),
      static_cast<unsigned long long>(r.slowloris_held),
      static_cast<unsigned long long>(r.http_deadline_closes));
  std::fflush(stdout);
}

void add_scenario_json(JsonWriter& j, const ScenarioResult& r) {
  const std::string p = r.name + ".";
  const auto& t = r.tenants[0];
  j.add(p + "krps", t.krps);
  j.add(p + "goodput_mbps", t.goodput_mbps);
  j.add(p + "p99_ms", t.p99_ms);
  j.add(p + "sessions_completed", t.sessions_completed);
  j.add(p + "sessions_failed", t.sessions_failed);
  j.add(p + "flow_filters_peak", r.server_flow_filters_peak);
  j.add(p + "flow_filters_end", r.server_flow_filters_end);
  j.add(p + "filter_evictions", r.server_filter_evictions);
  j.add(p + "syn_cookies_sent", r.syn_cookies_sent);
  j.add(p + "syn_cookies_accepted", r.syn_cookies_accepted);
  j.add(p + "syn_cookies_rejected", r.syn_cookies_rejected);
  j.add(p + "slowloris_held", r.slowloris_held);
  j.add(p + "slowloris_shed", r.slowloris_shed);
  j.add(p + "deadline_closes", r.http_deadline_closes);
  if (r.syns_sent > 0) j.add(p + "syns_sent", r.syns_sent);
}

struct MigrationResult {
  std::uint64_t migrations{0};
  std::uint64_t conns_moved{0};
  double blackout_p50_us{0.0};
  double blackout_p99_us{0.0};
  std::uint64_t error_conns{0};
  double krps{0.0};
};

/// Migration churn under live load: ping-pong every established connection
/// between two replicas and record the blackout each pass costs.
MigrationResult run_migration_churn(bool quick) {
  MigrationResult out;
  Testbed::Config cfg;
  cfg.seed = 3434;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 2;
  so.webs = 2;
  so.tracking_filters = true;  // migration repoints exact-match filters
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 4;
  co.concurrency_per_gen = 16;
  co.requests_per_conn = 1000;  // long-lived connections worth moving
  ClientRig client = build_client(tb, co, 2);
  prepopulate_arp(server, client);

  tb.sim.run_for(kWarmup);
  client.mark();
  std::uint64_t errors_before = 0;
  for (auto& g : client.gens) errors_before += g->report().error_conns;

  const int rounds = quick ? 6 : 12;
  std::uint64_t moved = 0;
  for (int i = 0; i < rounds; ++i) {
    auto& from = server.neat->replica(static_cast<std::size_t>(i % 2));
    auto& to = server.neat->replica(static_cast<std::size_t>((i + 1) % 2));
    server.neat->migrate_connections(from, to,
                                     [&moved](std::size_t n) { moved += n; });
    tb.sim.run_for(50 * sim::kMillisecond);
  }
  const auto agg = client.aggregate(
      static_cast<sim::SimTime>(rounds) * 50 * sim::kMillisecond);

  std::uint64_t errors_after = 0;
  for (auto& g : client.gens) errors_after += g->report().error_conns;
  out.error_conns = errors_after - errors_before;
  out.conns_moved = moved;
  out.krps = agg.krps;
  if (const auto* c = tb.sim.metrics().find_counter("neat.migrations")) {
    out.migrations = c->value();
  }
  if (const auto* h =
          tb.sim.metrics().find_histogram("neat.migration_blackout_ns")) {
    out.blackout_p50_us = static_cast<double>(h->quantile(0.50)) / 1e3;
    out.blackout_p99_us = static_cast<double>(h->quantile(0.99)) / 1e3;
  }
  return out;
}

/// The comparison point: checkpointed restart recovery. Crash a replica,
/// let the supervisor detect + restart it, and read the crash-to-first-
/// service histogram the host records.
double run_restart_recovery_p50_us(bool quick) {
  Testbed::Config cfg;
  cfg.seed = 3535;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.replicas = 2;
  so.webs = 2;
  so.tracking_filters = true;
  so.host.checkpoint_interval = 5 * sim::kMillisecond;  // stateful recovery
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 4;
  co.concurrency_per_gen = 16;
  co.requests_per_conn = 100;
  ClientRig client = build_client(tb, co, 2);
  prepopulate_arp(server, client);

  tb.sim.run_for(kWarmup);
  const int crashes = quick ? 2 : 4;
  for (int i = 0; i < crashes; ++i) {
    server.neat->inject_crash(
        server.neat->replica(static_cast<std::size_t>(i % 2)),
        Component::kWhole);
    tb.sim.run_for(300 * sim::kMillisecond);
  }
  const auto* h =
      tb.sim.metrics().find_histogram("recovery.crash_to_first_service_ns");
  return h != nullptr ? static_cast<double>(h->quantile(0.50)) / 1e3 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  header("Extension: adversary defenses — SYN cookies, filter eviction, "
         "header deadlines, live migration");
  JsonWriter json;
  bool ok = true;

  // --- 1. SYN flood -------------------------------------------------------
  std::printf("\n[1/3] spoofed SYN flood, attacked vs defended\n");
  const ScenarioResult syn_att =
      wl::run_scenario(syn_flood_scenario(quick, false));
  print_scenario(syn_att);
  const ScenarioResult syn_def =
      wl::run_scenario(syn_flood_scenario(quick, true));
  print_scenario(syn_def);
  const double att_goodput = std::max(tenant_goodput(syn_att), 1e-9);
  const double syn_ratio = tenant_goodput(syn_def) / att_goodput;
  if (syn_ratio > 1000.0) {
    std::printf(
        "=> defended/attacked goodput ratio: >1000x (attacked collapsed; "
        "gate: >= 5)\n");
  } else {
    std::printf("=> defended/attacked goodput ratio: %.1fx (gate: >= 5)\n",
                syn_ratio);
  }
  if (syn_ratio < 5.0) {
    std::printf("SYN FLOOD CONTRACT FAILED\n");
    ok = false;
  }
  // A spoofed flood must not exhaust the 8k filter table when install is
  // deferred to handshake completion.
  if (syn_def.server_flow_filters_peak >= 8192) {
    std::printf("FILTER TABLE EXHAUSTED UNDER DEFENSE (peak=%llu)\n",
                static_cast<unsigned long long>(
                    syn_def.server_flow_filters_peak));
    ok = false;
  }
  add_scenario_json(json, syn_att);
  add_scenario_json(json, syn_def);
  json.add("syn_flood.goodput_ratio", syn_ratio);

  // --- 2. slowloris -------------------------------------------------------
  std::printf("\n[2/3] slowloris, attacked vs defended\n");
  const ScenarioResult lor_att =
      wl::run_scenario(slowloris_scenario(quick, false));
  print_scenario(lor_att);
  const ScenarioResult lor_def =
      wl::run_scenario(slowloris_scenario(quick, true));
  print_scenario(lor_def);
  // The adversary reopens every holder the server sheds, so the standing
  // population stays at target in both runs. The defense signal is bounded
  // holder lifetime: the defended server sheds holders (deadline closes /
  // adversary conns_lost), the undefended one never does.
  std::printf(
      "=> shed holders: attacked=%llu defended=%llu, deadline closes=%llu "
      "(holders=%llu)\n",
      static_cast<unsigned long long>(lor_att.slowloris_shed),
      static_cast<unsigned long long>(lor_def.slowloris_shed),
      static_cast<unsigned long long>(lor_def.http_deadline_closes),
      static_cast<unsigned long long>(lor_def.slowloris_held));
  if (lor_def.http_deadline_closes == 0 || lor_def.slowloris_shed == 0 ||
      lor_att.slowloris_shed > 0) {
    std::printf("SLOWLORIS CONTRACT FAILED\n");
    ok = false;
  }
  add_scenario_json(json, lor_att);
  add_scenario_json(json, lor_def);

  // --- 3. migration -------------------------------------------------------
  std::printf("\n[3/3] live migration blackout vs restart recovery\n");
  const MigrationResult mig = run_migration_churn(quick);
  const double restart_p50_us = run_restart_recovery_p50_us(quick);
  std::printf(
      "migrations=%llu conns_moved=%llu blackout p50=%.1fus p99=%.1fus | "
      "errors=%llu krps=%.1f\n",
      static_cast<unsigned long long>(mig.migrations),
      static_cast<unsigned long long>(mig.conns_moved),
      mig.blackout_p50_us, mig.blackout_p99_us,
      static_cast<unsigned long long>(mig.error_conns), mig.krps);
  std::printf("restart recovery crash-to-first-service p50=%.1fus\n",
              restart_p50_us);
  std::printf("=> migration p99 blackout vs restart p50: %.1fus vs %.1fus\n",
              mig.blackout_p99_us, restart_p50_us);
  if (mig.migrations == 0 || mig.conns_moved == 0 ||
      mig.blackout_p99_us <= 0.0 || restart_p50_us <= 0.0 ||
      mig.blackout_p99_us >= restart_p50_us || mig.error_conns > 0) {
    std::printf("MIGRATION CONTRACT FAILED\n");
    ok = false;
  }
  json.add("migration.count", mig.migrations);
  json.add("migration.conns_moved", mig.conns_moved);
  json.add("migration.blackout_p50_us", mig.blackout_p50_us);
  json.add("migration.blackout_p99_us", mig.blackout_p99_us);
  json.add("migration.error_conns", mig.error_conns);
  json.add("migration.krps", mig.krps);
  json.add("restart.first_service_p50_us", restart_p50_us);

  json.add("quick", quick);
  json.add("defense_ok", ok);
  json.write("ext_defense");
  std::printf("\n=> %s\n", ok ? "all defense contracts hold"
                              : "DEFENSE CONTRACT FAILURES (see above)");
  return ok ? 0 : 1;
}
