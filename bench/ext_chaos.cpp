// Extension bench: a randomized chaos campaign against the NEaT stack.
//
// A fixed-seed schedule of composite faults — replica/driver/component
// crashes, crash storms, crashes timed into handshakes and lazy
// termination, concurrent failures, link blips — runs on top of a
// persistently lossy, reordering link while an HTTP workload with
// byte-for-byte payload verification stays up. The exit code reflects the
// end-of-run invariants: 0 only if the supervision audit passes and no
// client ever observed corrupted payload bytes.
//
// All robustness counters (TCP retransmits/checksum drops/backlog SYN
// drops, watchdog detection latency, restarts, backoff, quarantines) are
// emitted to BENCH_ext_chaos.json.
#include "bench_util.hpp"
#include "fault/chaos.hpp"

using namespace neat;
using namespace neat::bench;

int main(int argc, char** argv) {
  header("Chaos campaign: randomized multi-fault schedule under load");
  const std::string trace = trace_out_arg(argc, argv);

  Testbed::Config cfg;
  cfg.seed = 777;
  // Persistent baseline impairment: >=1% loss plus reordering for the
  // whole run — the RTO/fast-retransmit paths never get a quiet moment.
  cfg.link.impairment.drop_probability = 0.01;
  cfg.link.impairment.reorder_probability = 0.02;
  cfg.link.impairment.reorder_window = 100 * sim::kMicrosecond;
  Testbed tb(cfg);

  NeatServerOptions so;
  so.multi_component = false;
  so.replicas = 3;
  so.webs = 3;
  so.files = {{"/file2048", 2048}};
  ServerRig server = build_neat_server(tb, so);

  ClientOptions co;
  co.generators = 6;
  co.concurrency_per_gen = 16;
  co.requests_per_conn = 20;
  co.path = "/file2048";
  ClientRig client = build_client(tb, co, so.webs);
  prepopulate_arp(server, client);

  // Byte-for-byte payload verification on every response body.
  const auto* body = server.files->lookup("/file2048");
  for (auto& g : client.gens) g->config().expect_body = body;

  tb.sim.run_for(100 * sim::kMillisecond);  // warm up under load

  fault::ChaosConfig cc;
  cc.seed = 4242;
  cc.duration = 1500 * sim::kMillisecond;
  cc.mean_fault_gap = 50 * sim::kMillisecond;
  cc.w_scale_down_crash = 2.5;  // make the rarest composite fault show up
  fault::ChaosCampaign campaign(*server.neat, tb.link, cc);
  campaign.start();
  tb.sim.run_for(campaign.span() + 100 * sim::kMillisecond);
  const auto& rep = campaign.audit();

  // Aggregate workload-side results.
  std::uint64_t mismatches = 0;
  std::uint64_t committed = 0;
  std::uint64_t error_conns = 0;
  std::uint64_t clean_conns = 0;
  obs::Histogram latency;
  for (const auto& g : client.gens) {
    mismatches += g->report().payload_mismatches;
    committed += g->report().committed_requests;
    error_conns += g->report().error_conns;
    clean_conns += g->report().clean_conns;
    latency.merge(g->report().latency);
  }

  // Aggregate server-side robustness counters.
  net::TcpStats tcp{};
  for (std::size_t i = 0; i < server.neat->replica_count(); ++i) {
    const auto& s = server.neat->replica(i).tcp().stats();
    tcp.retransmits += s.retransmits;
    tcp.checksum_drops += s.checksum_drops;
    tcp.syns_dropped_backlog += s.syns_dropped_backlog;
    tcp.conns_accepted += s.conns_accepted;
    tcp.ooo_segments += s.ooo_segments;
  }
  const auto& sup = server.neat->supervisor().stats();
  const auto& drv = server.neat->driver().driver_stats();

  std::printf("faults injected: %zu (replica %zu, component %zu, driver %zu,"
              " concurrent %zu, storms %zu, handshake %zu, scale-down %zu,"
              " blips %zu)\n",
              rep.faults_injected, rep.replica_crashes,
              rep.component_crashes, rep.driver_crashes,
              rep.concurrent_faults, rep.crash_storms, rep.handshake_crashes,
              rep.scale_down_crashes, rep.link_blips);
  std::printf("supervision: %llu detections (mean %.2f ms), %llu restarts, "
              "%llu driver restarts, %llu quarantines, %llu replacements, "
              "max backoff level %d\n",
              static_cast<unsigned long long>(sup.detections),
              sup.mean_detection_ms(),
              static_cast<unsigned long long>(sup.restarts),
              static_cast<unsigned long long>(sup.driver_restarts),
              static_cast<unsigned long long>(sup.quarantines),
              static_cast<unsigned long long>(sup.replacements),
              sup.max_backoff_level);
  std::printf("tcp robustness: %llu retransmits, %llu checksum drops, "
              "%llu SYNs dropped (backlog), %llu out-of-order segments\n",
              static_cast<unsigned long long>(tcp.retransmits),
              static_cast<unsigned long long>(tcp.checksum_drops),
              static_cast<unsigned long long>(tcp.syns_dropped_backlog),
              static_cast<unsigned long long>(tcp.ooo_segments));
  std::printf("workload: %llu committed requests, %llu clean conns, "
              "%llu error conns, %llu payload mismatches\n",
              static_cast<unsigned long long>(committed),
              static_cast<unsigned long long>(clean_conns),
              static_cast<unsigned long long>(error_conns),
              static_cast<unsigned long long>(mismatches));
  for (const auto& v : rep.violations) {
    std::printf("INVARIANT VIOLATION: %s\n", v.c_str());
  }
  const bool ok = rep.passed() && mismatches == 0 && committed > 0;
  std::printf("campaign %s\n", ok ? "PASSED" : "FAILED");

  JsonWriter json;
  json.add("faults_injected", rep.faults_injected);
  json.add("replica_crashes", rep.replica_crashes);
  json.add("component_crashes", rep.component_crashes);
  json.add("driver_crashes", rep.driver_crashes);
  json.add("concurrent_faults", rep.concurrent_faults);
  json.add("crash_storms", rep.crash_storms);
  json.add("handshake_crashes", rep.handshake_crashes);
  json.add("scale_down_crashes", rep.scale_down_crashes);
  json.add("link_blips", rep.link_blips);
  json.add("detections", sup.detections);
  json.add("mean_detection_ms", sup.mean_detection_ms());
  json.add("max_detection_ms",
           static_cast<double>(sup.detection_latency_max) / 1e6);
  json.add("restarts", sup.restarts);
  json.add("driver_restarts", sup.driver_restarts);
  json.add("quarantines", sup.quarantines);
  json.add("replacements", sup.replacements);
  json.add("scale_down_collects", sup.scale_down_collects);
  json.add("max_backoff_level", sup.max_backoff_level);
  json.add("driver_restart_count", drv.restarts);
  json.add("tcp_retransmits", tcp.retransmits);
  json.add("tcp_checksum_drops", tcp.checksum_drops);
  json.add("tcp_syns_dropped_backlog", tcp.syns_dropped_backlog);
  json.add("tcp_ooo_segments", tcp.ooo_segments);
  json.add("tcp_conns_accepted", tcp.conns_accepted);
  json.add("committed_requests", committed);
  json.add("clean_conns", clean_conns);
  json.add("error_conns", error_conns);
  json.add("payload_mismatches", mismatches);
  json.add("invariant_violations", rep.violations.size());
  json.add("latency_mean_ms", latency.mean() / 1e6);
  json.add("latency_p50_ms", static_cast<double>(latency.quantile(0.50)) / 1e6);
  json.add("latency_p95_ms", static_cast<double>(latency.quantile(0.95)) / 1e6);
  json.add("latency_p99_ms", static_cast<double>(latency.quantile(0.99)) / 1e6);
  json.add("latency_p999_ms",
           static_cast<double>(latency.quantile(0.999)) / 1e6);
  add_recovery(json, server.neat->recovery_log());
  json.add("passed", ok);
  json.write("ext_chaos");

  write_trace(tb.sim, trace);
  return ok ? 0 : 1;
}
