// Calibration probe: prints the headline throughput of each stack
// configuration next to the paper's measured value. Used to tune the cost
// model in src/neat/costs.hpp and src/baseline/linux.hpp; run it after any
// cost change. Not one of the paper's tables itself.
#include <cstdio>

#include "bench_util.hpp"
#include "harness/testbed.hpp"

using namespace neat;
using namespace neat::harness;

namespace {

constexpr sim::SimTime kWarmup = 200 * sim::kMillisecond;
constexpr sim::SimTime kMeasure = 300 * sim::kMillisecond;

/// Consumed by the first run when --trace-out is given.
std::string g_trace;

RunResult neat_amd(bool multi, int replicas, int webs) {
  Testbed::Config cfg;
  cfg.seed = 12345;
  Testbed tb(cfg);
  NeatServerOptions so;
  so.multi_component = multi;
  so.replicas = replicas;
  so.webs = webs;
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 12;
  co.concurrency_per_gen = 24;
  ClientRig client = build_client(tb, co, webs);
  prepopulate_arp(server, client);
  RunResult res = run_window(tb, client, kWarmup, kMeasure);
  bench::write_trace(tb.sim, g_trace);
  g_trace.clear();
  return res;
}

RunResult neat_xeon(bool multi, int replicas, int webs, bool ht) {
  Testbed::Config cfg;
  cfg.seed = 12345;
  cfg.server_machine = sim::intel_xeon_e5520();
  Testbed tb(cfg);
  NeatServerOptions so;
  so.multi_component = multi;
  so.replicas = replicas;
  so.webs = webs;
  so.placement = xeon_placement(multi, replicas, webs, ht);
  ServerRig server = build_neat_server(tb, so);
  ClientOptions co;
  co.generators = 12;
  co.concurrency_per_gen = 24;
  ClientRig client = build_client(tb, co, webs);
  prepopulate_arp(server, client);
  RunResult res = run_window(tb, client, kWarmup, kMeasure);
  bench::write_trace(tb.sim, g_trace);
  g_trace.clear();
  return res;
}

RunResult linux_run(const sim::MachineParams& machine, int webs) {
  Testbed::Config cfg;
  cfg.seed = 12345;
  cfg.server_machine = machine;
  Testbed tb(cfg);
  LinuxServerOptions so;
  so.webs = webs;
  ServerRig server = build_linux_server(tb, so);
  ClientOptions co;
  co.generators = webs > 12 ? webs : 12;
  co.concurrency_per_gen = 24;
  ClientRig client = build_client(tb, co, webs);
  prepopulate_arp(server, client);
  RunResult res = run_window(tb, client, kWarmup, kMeasure);
  bench::write_trace(tb.sim, g_trace);
  g_trace.clear();
  return res;
}

bench::JsonWriter g_json;

void row(const char* name, const char* slug, double paper,
         const RunResult& r) {
  std::printf("%-28s paper=%6.1f krps   measured=%6.1f krps   errs=%llu\n",
              name, paper, r.krps, (unsigned long long)r.error_conns);
  std::fflush(stdout);
  const std::string prefix = std::string(slug) + "_";
  bench::add_latency(g_json, prefix, r);
  g_json.add(prefix + "paper_krps", paper);
}

}  // namespace

int main(int argc, char** argv) {
  g_trace = bench::trace_out_arg(argc, argv);
  std::printf("=== calibration: headline configurations ===\n");
  row("AMD  Linux best (12 srv)", "amd_linux_best", 224.0,
      linux_run(sim::amd_opteron_6168(), 12));
  row("AMD  NEaT 3x, 6 webs", "amd_neat3x", 302.0, neat_amd(false, 3, 6));
  row("AMD  NEaT 2x, 5 webs", "amd_neat2x", 250.0, neat_amd(false, 2, 5));
  row("AMD  Multi 1x, 4 webs", "amd_multi1x", 200.0, neat_amd(true, 1, 4));
  row("AMD  Multi 2x, 5 webs", "amd_multi2x", 250.0, neat_amd(true, 2, 5));
  row("Xeon Linux best (16 srv)", "xeon_linux_best", 328.0,
      linux_run(sim::intel_xeon_e5520(), 16));
  row("Xeon NEaT 4x HT, 9 webs", "xeon_neat4x_ht", 372.0,
      neat_xeon(false, 4, 9, true));
  row("Xeon Multi 1x, 4 webs", "xeon_multi1x", 240.0,
      neat_xeon(true, 1, 4, false));
  row("Xeon Multi 2x HT, 8 webs", "xeon_multi2x_ht", 322.0,
      neat_xeon(true, 2, 8, true));
  g_json.write("calibration");
  return 0;
}
