// Figure 7: scaling lighttpd and the network stack on the 12-core AMD.
//
// Series: Multi 1x, Multi 2x, NEaT 2x, NEaT 3x over 1..6 lighttpd
// instances (20-byte file, 100 requests per persistent connection).
// Paper landmarks:
//   * Multi 1x scales linearly to 4 instances, then the stack saturates;
//   * Multi 2x / NEaT 2x reach ~250 krps at 5 instances;
//   * NEaT 3x scales to 6 instances (~302 krps) — 34.8% above the best
//     Linux configuration (224 krps).
#include "bench_util.hpp"

using namespace neat;
using namespace neat::bench;

int main(int argc, char** argv) {
  header("Figure 7: AMD - scaling lighttpd and the network stack [kreq/s]");
  std::string trace = trace_out_arg(argc, argv);
  JsonWriter json;

  struct Series {
    const char* name;
    const char* slug;
    bool multi;
    int replicas;
  };
  const Series series[] = {
      {"Multi 1x", "multi1x", true, 1},
      {"Multi 2x", "multi2x", true, 2},
      {"NEaT 2x", "neat2x", false, 2},
      {"NEaT 3x", "neat3x", false, 3},
  };

  std::printf("%-10s", "webs");
  for (const auto& s : series) std::printf(" %10s", s.name);
  std::printf("\n");

  for (int webs = 1; webs <= 6; ++webs) {
    std::printf("%-10d", webs);
    for (const auto& s : series) {
      // Core budget: 3 system cores + stack cores + web cores <= 12.
      const int stack_cores = s.multi ? 2 * s.replicas : s.replicas;
      if (3 + stack_cores + webs > 12) {
        std::printf(" %10s", "-");
        continue;
      }
      NeatRun r;
      r.multi = s.multi;
      r.replicas = s.replicas;
      r.webs = webs;
      const auto res = run_neat(r);
      std::printf(" %10.1f", res.krps);
      std::fflush(stdout);
      json.add(std::string(s.slug) + "_w" + std::to_string(webs) + "_krps",
               res.krps);
    }
    std::printf("\n");
  }

  // Reference: the best Linux configuration on the same machine.
  LinuxRun lr;
  lr.webs = 12;
  const auto lin = run_linux(lr);
  std::printf("\nLinux best configuration (all 12 cores): %.1f krps "
              "(paper: 224)\n", lin.krps);

  NeatRun best;
  best.replicas = 3;
  best.webs = 6;
  best.trace_out = trace;
  const auto neat3 = run_neat(best);
  std::printf("NEaT 3x advantage over Linux: %+.1f%% (paper: +34.8%%)\n",
              (neat3.krps / lin.krps - 1.0) * 100.0);
  add_latency(json, "linux_best_", lin);
  add_latency(json, "neat3x_best_", neat3);
  json.write("fig7_amd_scaling");
  return 0;
}
