# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_ipc[1]_include.cmake")
include("/root/repo/build/tests/test_net_codec[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_nic[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_scaling[1]_include.cmake")
include("/root/repo/build/tests/test_http[1]_include.cmake")
include("/root/repo/build/tests/test_socklib[1]_include.cmake")
include("/root/repo/build/tests/test_linux[1]_include.cmake")
include("/root/repo/build/tests/test_e2e_properties[1]_include.cmake")
include("/root/repo/build/tests/test_replica[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_apps_harness[1]_include.cmake")
