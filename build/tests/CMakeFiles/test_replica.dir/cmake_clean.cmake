file(REMOVE_RECURSE
  "CMakeFiles/test_replica.dir/test_replica.cpp.o"
  "CMakeFiles/test_replica.dir/test_replica.cpp.o.d"
  "test_replica"
  "test_replica.pdb"
  "test_replica[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
