file(REMOVE_RECURSE
  "CMakeFiles/test_apps_harness.dir/test_apps_harness.cpp.o"
  "CMakeFiles/test_apps_harness.dir/test_apps_harness.cpp.o.d"
  "test_apps_harness"
  "test_apps_harness.pdb"
  "test_apps_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
