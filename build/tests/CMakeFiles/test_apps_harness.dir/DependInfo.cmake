
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps_harness.cpp" "tests/CMakeFiles/test_apps_harness.dir/test_apps_harness.cpp.o" "gcc" "tests/CMakeFiles/test_apps_harness.dir/test_apps_harness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/neat_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/neat_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/neat_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/socklib/CMakeFiles/neat_socklib.dir/DependInfo.cmake"
  "/root/repo/build/src/neat/CMakeFiles/neat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/neat_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/drv/CMakeFiles/neat_drv.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/neat_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/neat_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neat_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
