file(REMOVE_RECURSE
  "CMakeFiles/test_e2e_properties.dir/test_e2e_properties.cpp.o"
  "CMakeFiles/test_e2e_properties.dir/test_e2e_properties.cpp.o.d"
  "test_e2e_properties"
  "test_e2e_properties.pdb"
  "test_e2e_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e2e_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
