# Empty dependencies file for test_linux.
# This may be replaced when dependencies are built.
