file(REMOVE_RECURSE
  "CMakeFiles/test_net_codec.dir/test_net_codec.cpp.o"
  "CMakeFiles/test_net_codec.dir/test_net_codec.cpp.o.d"
  "test_net_codec"
  "test_net_codec.pdb"
  "test_net_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
