# Empty dependencies file for test_net_codec.
# This may be replaced when dependencies are built.
