file(REMOVE_RECURSE
  "CMakeFiles/test_socklib.dir/test_socklib.cpp.o"
  "CMakeFiles/test_socklib.dir/test_socklib.cpp.o.d"
  "test_socklib"
  "test_socklib.pdb"
  "test_socklib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_socklib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
