# Empty compiler generated dependencies file for test_socklib.
# This may be replaced when dependencies are built.
