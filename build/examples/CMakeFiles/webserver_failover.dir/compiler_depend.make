# Empty compiler generated dependencies file for webserver_failover.
# This may be replaced when dependencies are built.
