file(REMOVE_RECURSE
  "CMakeFiles/webserver_failover.dir/webserver_failover.cpp.o"
  "CMakeFiles/webserver_failover.dir/webserver_failover.cpp.o.d"
  "webserver_failover"
  "webserver_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
