file(REMOVE_RECURSE
  "CMakeFiles/neat_apps.dir/http.cpp.o"
  "CMakeFiles/neat_apps.dir/http.cpp.o.d"
  "CMakeFiles/neat_apps.dir/http_server.cpp.o"
  "CMakeFiles/neat_apps.dir/http_server.cpp.o.d"
  "CMakeFiles/neat_apps.dir/loadgen.cpp.o"
  "CMakeFiles/neat_apps.dir/loadgen.cpp.o.d"
  "libneat_apps.a"
  "libneat_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neat_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
