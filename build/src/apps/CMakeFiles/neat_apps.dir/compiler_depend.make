# Empty compiler generated dependencies file for neat_apps.
# This may be replaced when dependencies are built.
