file(REMOVE_RECURSE
  "libneat_apps.a"
)
