file(REMOVE_RECURSE
  "CMakeFiles/neat_socklib.dir/neat_socket.cpp.o"
  "CMakeFiles/neat_socklib.dir/neat_socket.cpp.o.d"
  "CMakeFiles/neat_socklib.dir/socklib.cpp.o"
  "CMakeFiles/neat_socklib.dir/socklib.cpp.o.d"
  "libneat_socklib.a"
  "libneat_socklib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neat_socklib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
