file(REMOVE_RECURSE
  "libneat_socklib.a"
)
