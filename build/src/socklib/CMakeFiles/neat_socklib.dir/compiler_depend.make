# Empty compiler generated dependencies file for neat_socklib.
# This may be replaced when dependencies are built.
