file(REMOVE_RECURSE
  "libneat_harness.a"
)
