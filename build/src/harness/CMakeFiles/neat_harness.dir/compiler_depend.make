# Empty compiler generated dependencies file for neat_harness.
# This may be replaced when dependencies are built.
