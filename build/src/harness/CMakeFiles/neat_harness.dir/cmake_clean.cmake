file(REMOVE_RECURSE
  "CMakeFiles/neat_harness.dir/testbed.cpp.o"
  "CMakeFiles/neat_harness.dir/testbed.cpp.o.d"
  "libneat_harness.a"
  "libneat_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neat_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
