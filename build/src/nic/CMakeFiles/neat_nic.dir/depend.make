# Empty dependencies file for neat_nic.
# This may be replaced when dependencies are built.
