file(REMOVE_RECURSE
  "CMakeFiles/neat_nic.dir/nic.cpp.o"
  "CMakeFiles/neat_nic.dir/nic.cpp.o.d"
  "libneat_nic.a"
  "libneat_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neat_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
