file(REMOVE_RECURSE
  "libneat_nic.a"
)
