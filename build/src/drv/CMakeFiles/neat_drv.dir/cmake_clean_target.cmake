file(REMOVE_RECURSE
  "libneat_drv.a"
)
