# Empty compiler generated dependencies file for neat_drv.
# This may be replaced when dependencies are built.
