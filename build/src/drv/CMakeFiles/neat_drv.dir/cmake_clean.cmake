file(REMOVE_RECURSE
  "CMakeFiles/neat_drv.dir/driver.cpp.o"
  "CMakeFiles/neat_drv.dir/driver.cpp.o.d"
  "libneat_drv.a"
  "libneat_drv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neat_drv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
