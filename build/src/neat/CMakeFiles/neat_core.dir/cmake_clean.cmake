file(REMOVE_RECURSE
  "CMakeFiles/neat_core.dir/autoscaler.cpp.o"
  "CMakeFiles/neat_core.dir/autoscaler.cpp.o.d"
  "CMakeFiles/neat_core.dir/host.cpp.o"
  "CMakeFiles/neat_core.dir/host.cpp.o.d"
  "CMakeFiles/neat_core.dir/replica.cpp.o"
  "CMakeFiles/neat_core.dir/replica.cpp.o.d"
  "libneat_core.a"
  "libneat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
