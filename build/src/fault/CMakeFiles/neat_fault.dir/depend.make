# Empty dependencies file for neat_fault.
# This may be replaced when dependencies are built.
