file(REMOVE_RECURSE
  "libneat_fault.a"
)
