file(REMOVE_RECURSE
  "CMakeFiles/neat_fault.dir/injector.cpp.o"
  "CMakeFiles/neat_fault.dir/injector.cpp.o.d"
  "libneat_fault.a"
  "libneat_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neat_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
