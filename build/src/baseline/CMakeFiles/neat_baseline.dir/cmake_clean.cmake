file(REMOVE_RECURSE
  "CMakeFiles/neat_baseline.dir/linux.cpp.o"
  "CMakeFiles/neat_baseline.dir/linux.cpp.o.d"
  "libneat_baseline.a"
  "libneat_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neat_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
