# Empty dependencies file for neat_baseline.
# This may be replaced when dependencies are built.
