file(REMOVE_RECURSE
  "libneat_baseline.a"
)
