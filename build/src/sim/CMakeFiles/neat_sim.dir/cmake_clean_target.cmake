file(REMOVE_RECURSE
  "libneat_sim.a"
)
