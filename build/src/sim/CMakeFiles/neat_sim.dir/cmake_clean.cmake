file(REMOVE_RECURSE
  "CMakeFiles/neat_sim.dir/sim.cpp.o"
  "CMakeFiles/neat_sim.dir/sim.cpp.o.d"
  "libneat_sim.a"
  "libneat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
