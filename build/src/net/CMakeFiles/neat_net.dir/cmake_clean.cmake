file(REMOVE_RECURSE
  "CMakeFiles/neat_net.dir/codec.cpp.o"
  "CMakeFiles/neat_net.dir/codec.cpp.o.d"
  "CMakeFiles/neat_net.dir/tcp.cpp.o"
  "CMakeFiles/neat_net.dir/tcp.cpp.o.d"
  "CMakeFiles/neat_net.dir/transport_codec.cpp.o"
  "CMakeFiles/neat_net.dir/transport_codec.cpp.o.d"
  "libneat_net.a"
  "libneat_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neat_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
