# Empty compiler generated dependencies file for fig12_config_compare.
# This may be replaced when dependencies are built.
