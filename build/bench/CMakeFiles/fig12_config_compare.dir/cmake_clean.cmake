file(REMOVE_RECURSE
  "CMakeFiles/fig12_config_compare.dir/fig12_config_compare.cpp.o"
  "CMakeFiles/fig12_config_compare.dir/fig12_config_compare.cpp.o.d"
  "fig12_config_compare"
  "fig12_config_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_config_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
