# Empty dependencies file for table1_linux_tuning.
# This may be replaced when dependencies are built.
