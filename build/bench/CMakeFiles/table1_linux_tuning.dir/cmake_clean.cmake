file(REMOVE_RECURSE
  "CMakeFiles/table1_linux_tuning.dir/table1_linux_tuning.cpp.o"
  "CMakeFiles/table1_linux_tuning.dir/table1_linux_tuning.cpp.o.d"
  "table1_linux_tuning"
  "table1_linux_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_linux_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
