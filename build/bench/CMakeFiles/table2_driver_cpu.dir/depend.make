# Empty dependencies file for table2_driver_cpu.
# This may be replaced when dependencies are built.
