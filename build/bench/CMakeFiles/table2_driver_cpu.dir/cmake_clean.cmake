file(REMOVE_RECURSE
  "CMakeFiles/table2_driver_cpu.dir/table2_driver_cpu.cpp.o"
  "CMakeFiles/table2_driver_cpu.dir/table2_driver_cpu.cpp.o.d"
  "table2_driver_cpu"
  "table2_driver_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_driver_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
