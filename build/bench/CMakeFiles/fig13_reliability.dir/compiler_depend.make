# Empty compiler generated dependencies file for fig13_reliability.
# This may be replaced when dependencies are built.
