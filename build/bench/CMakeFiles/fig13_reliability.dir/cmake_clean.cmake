file(REMOVE_RECURSE
  "CMakeFiles/fig13_reliability.dir/fig13_reliability.cpp.o"
  "CMakeFiles/fig13_reliability.dir/fig13_reliability.cpp.o.d"
  "fig13_reliability"
  "fig13_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
