file(REMOVE_RECURSE
  "CMakeFiles/ext_smartnic.dir/ext_smartnic.cpp.o"
  "CMakeFiles/ext_smartnic.dir/ext_smartnic.cpp.o.d"
  "ext_smartnic"
  "ext_smartnic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_smartnic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
