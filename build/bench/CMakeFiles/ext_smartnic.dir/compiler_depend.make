# Empty compiler generated dependencies file for ext_smartnic.
# This may be replaced when dependencies are built.
