file(REMOVE_RECURSE
  "CMakeFiles/fig11_xeon_single.dir/fig11_xeon_single.cpp.o"
  "CMakeFiles/fig11_xeon_single.dir/fig11_xeon_single.cpp.o.d"
  "fig11_xeon_single"
  "fig11_xeon_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_xeon_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
