file(REMOVE_RECURSE
  "CMakeFiles/fig7_amd_scaling.dir/fig7_amd_scaling.cpp.o"
  "CMakeFiles/fig7_amd_scaling.dir/fig7_amd_scaling.cpp.o.d"
  "fig7_amd_scaling"
  "fig7_amd_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_amd_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
