# Empty dependencies file for fig7_amd_scaling.
# This may be replaced when dependencies are built.
