# Empty compiler generated dependencies file for fig9_xeon_multi.
# This may be replaced when dependencies are built.
