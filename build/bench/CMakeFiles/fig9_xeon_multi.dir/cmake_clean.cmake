file(REMOVE_RECURSE
  "CMakeFiles/fig9_xeon_multi.dir/fig9_xeon_multi.cpp.o"
  "CMakeFiles/fig9_xeon_multi.dir/fig9_xeon_multi.cpp.o.d"
  "fig9_xeon_multi"
  "fig9_xeon_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_xeon_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
