# Empty dependencies file for table3_fault_injection.
# This may be replaced when dependencies are built.
