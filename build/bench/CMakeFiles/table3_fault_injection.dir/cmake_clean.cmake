file(REMOVE_RECURSE
  "CMakeFiles/table3_fault_injection.dir/table3_fault_injection.cpp.o"
  "CMakeFiles/table3_fault_injection.dir/table3_fault_injection.cpp.o.d"
  "table3_fault_injection"
  "table3_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
