file(REMOVE_RECURSE
  "CMakeFiles/ext_stateful_recovery.dir/ext_stateful_recovery.cpp.o"
  "CMakeFiles/ext_stateful_recovery.dir/ext_stateful_recovery.cpp.o.d"
  "ext_stateful_recovery"
  "ext_stateful_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_stateful_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
