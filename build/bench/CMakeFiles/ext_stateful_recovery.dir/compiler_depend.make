# Empty compiler generated dependencies file for ext_stateful_recovery.
# This may be replaced when dependencies are built.
