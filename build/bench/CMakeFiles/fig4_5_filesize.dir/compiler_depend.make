# Empty compiler generated dependencies file for fig4_5_filesize.
# This may be replaced when dependencies are built.
