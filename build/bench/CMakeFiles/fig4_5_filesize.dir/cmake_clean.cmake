file(REMOVE_RECURSE
  "CMakeFiles/fig4_5_filesize.dir/fig4_5_filesize.cpp.o"
  "CMakeFiles/fig4_5_filesize.dir/fig4_5_filesize.cpp.o.d"
  "fig4_5_filesize"
  "fig4_5_filesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_5_filesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
