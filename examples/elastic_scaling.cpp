// Elastic scaling demo (paper §3.4): scale the stack up under growing load,
// then scale back down with lazy termination — without breaking a single
// established connection.
//
//   $ ./examples/elastic_scaling
#include <cstdio>

#include "harness/testbed.hpp"

using namespace neat;
using namespace neat::harness;

int main() {
  Testbed::Config cfg;
  cfg.seed = 34;
  // Lazy termination relies on the NIC pinning existing flows to their
  // queue while new flows follow the updated indirection table — the
  // "tracking filter" hardware extension the paper proposes (§4).
  cfg.server_nic.tracking_filters = true;
  Testbed tb(cfg);

  NeatServerOptions so;
  so.replicas = 1;  // "the system boots with at least one replica"
  so.webs = 4;
  ServerRig server = build_neat_server(tb, so);

  ClientOptions co;
  co.generators = 4;
  co.concurrency_per_gen = 24;
  co.requests_per_conn = 40;
  ClientRig client = build_client(tb, co, 4);
  prepopulate_arp(server, client);

  std::uint64_t last_reqs = 0;
  auto report = [&](const char* note) {
    std::uint64_t reqs = 0, errs = 0;
    for (auto& g : client.gens) {
      reqs += g->report().committed_requests;
      errs += g->report().error_conns;
    }
    std::printf("[%6.0f ms] %6.1f kreq/s, errors=%llu, replicas:",
                sim::to_millis(tb.sim.now()),
                static_cast<double>(reqs - last_reqs) / 0.1 / 1000.0,
                (unsigned long long)errs);
    last_reqs = reqs;
    for (std::size_t r = 0; r < server.neat->replica_count(); ++r) {
      auto& rep = server.neat->replica(r);
      std::printf(" [%zu: %zu conns%s]", r,
                  rep.tcp().active_connection_count(),
                  rep.terminated     ? " collected"
                  : rep.terminating ? " terminating"
                                    : "");
    }
    std::printf("  %s\n", note);
  };

  tb.sim.run_for(100 * sim::kMillisecond);
  report("booted with 1 replica");
  tb.sim.run_for(100 * sim::kMillisecond);
  report("");

  // Load is high, the single replica saturates: scale up.
  std::printf("--- overload detected: spawning replicas 1 and 2 ---\n");
  server.neat->add_replica({&tb.server_machine.thread(4)});
  server.neat->add_replica({&tb.server_machine.thread(5)});
  for (int i = 0; i < 4; ++i) {
    tb.sim.run_for(100 * sim::kMillisecond);
    report(i == 0 ? "new connections spread over 3 replicas" : "");
  }

  // Load drops (in a real deployment); scale down lazily.
  std::printf("--- scale down: lazily terminating replica 2 ---\n");
  StackReplica& victim = server.neat->replica(2);
  server.neat->begin_scale_down(victim);
  int rounds = 0;
  while (!victim.terminated && rounds++ < 100) {
    tb.sim.run_for(100 * sim::kMillisecond);
    report(victim.terminated
               ? "replica 2 drained to zero and was garbage collected"
               : "draining: existing connections still served");
  }

  std::uint64_t errs = 0;
  for (auto& g : client.gens) errs += g->report().error_conns;
  std::printf("\nconnections broken during the entire scale up/down cycle: "
              "%llu (lazy termination never aborts a connection)\n",
              (unsigned long long)errs);
  return errs == 0 ? 0 : 1;
}
