// Quickstart: the smallest complete NEaT system.
//
// Builds the two-machine testbed, brings up a NEaT host with two stack
// replicas, runs an echo service over the BSD-style socket API, and prints
// what happened — including which replica each connection landed on
// (the partitioning in action).
//
//   $ ./examples/quickstart
#include <cstdio>
#include <string>

#include "harness/testbed.hpp"
#include "socklib/socklib.hpp"

using namespace neat;
using namespace neat::harness;
using socklib::ConnCallbacks;
using socklib::Fd;
using socklib::kBadFd;

namespace {

/// Applications are ordinary event-driven processes holding a SockLib.
class App : public sim::Process {
 public:
  App(sim::Simulator& sim, std::string name)
      : sim::Process(sim, std::move(name)) {}
  std::unique_ptr<socklib::SockLib> lib;
};

}  // namespace

int main() {
  // --- 1. The testbed: two machines, two NICs, one 10G cable. -------------
  Testbed tb(Testbed::Config{});

  // --- 2. The server host: driver + SYSCALL server + 2 replicas. ----------
  NeatHost::Config cfg;  // single-component replicas by default
  NeatHost server(tb.sim, tb.server_machine, tb.server_nic, cfg);
  server.os_process().pin(tb.server_machine.thread(0));
  server.syscall().pin(tb.server_machine.thread(1));
  server.driver().pin(tb.server_machine.thread(2));
  server.add_replica({&tb.server_machine.thread(3)});
  server.add_replica({&tb.server_machine.thread(4)});

  App server_app(tb.sim, "echo-server");
  server_app.pin(tb.server_machine.thread(5));
  server_app.lib = std::make_unique<socklib::SockLib>(server_app, server);

  // --- 3. The client host (the other machine). -----------------------------
  NeatHost client(tb.sim, tb.client_machine, tb.client_nic, cfg);
  client.os_process().pin(tb.client_machine.thread(0));
  client.syscall().pin(tb.client_machine.thread(1));
  client.driver().pin(tb.client_machine.thread(2));
  client.add_replica({&tb.client_machine.thread(3)});

  App client_app(tb.sim, "client");
  client_app.pin(tb.client_machine.thread(4));
  client_app.lib = std::make_unique<socklib::SockLib>(client_app, client);

  // --- 4. An echo server: listen, accept, echo back whatever arrives. -----
  Fd listen_fd = kBadFd;
  listen_fd = server_app.lib->listen(7777, 64, [&] {
    ConnCallbacks cb;
    cb.on_readable = [&](Fd fd) {
      std::uint8_t buf[512];
      std::size_t n;
      while ((n = server_app.lib->recv(fd, buf)) > 0) {
        server_app.lib->send(fd, {buf, n});
      }
      if (server_app.lib->eof(fd)) server_app.lib->close(fd);
    };
    while (server_app.lib->accept(listen_fd, cb) != kBadFd) {
    }
  });

  // --- 5. Four clients, each sending one message. ---------------------------
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    const std::string msg = "hello #" + std::to_string(i);
    auto reply = std::make_shared<std::string>();
    ConnCallbacks cb;
    cb.on_connected = [&, msg, i](Fd fd) {
      std::printf("[%6.2f ms] client %d connected\n",
                  sim::to_millis(tb.sim.now()), i);
      client_app.lib->send(fd, {reinterpret_cast<const std::uint8_t*>(
                                    msg.data()),
                                msg.size()});
    };
    cb.on_readable = [&, i, msg, reply](Fd fd) {
      std::uint8_t buf[512];
      std::size_t n;
      while ((n = client_app.lib->recv(fd, buf)) > 0) {
        reply->append(reinterpret_cast<char*>(buf), n);
      }
      if (*reply == msg) {
        std::printf("[%6.2f ms] client %d got its echo back: \"%s\"\n",
                    sim::to_millis(tb.sim.now()), i, reply->c_str());
        client_app.lib->close(fd);
        ++done;
      }
    };
    client_app.lib->connect(net::SockAddr{kServerIp, 7777}, cb);
  }

  // --- 6. Run the world. ----------------------------------------------------
  tb.sim.run_for(200 * sim::kMillisecond);

  std::printf("\n%d/4 echoes completed\n", done);
  std::printf("connection placement across replicas "
              "(partitioning + load balancing):\n");
  for (std::size_t r = 0; r < server.replica_count(); ++r) {
    std::printf("  replica %zu accepted %llu connections\n", r,
                (unsigned long long)
                    server.replica(r).tcp().stats().conns_accepted);
  }
  return done == 4 ? 0 : 1;
}
