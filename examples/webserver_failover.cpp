// Failover demo: the paper's headline reliability property, live.
//
// A web workload runs against a NEaT server with three replicas. Mid-run we
// crash one replica's TCP component. Watch the throughput timeline: a dip
// for the failed replica's share, the other two replicas completely
// undisturbed, and full recovery once the replica restarts and re-announces
// itself to the NIC driver.
//
//   $ ./examples/webserver_failover
#include <cstdio>

#include "harness/testbed.hpp"

using namespace neat;
using namespace neat::harness;

int main() {
  Testbed::Config cfg;
  cfg.seed = 2016;
  Testbed tb(cfg);

  NeatServerOptions so;
  so.multi_component = true;  // isolate TCP from IP: finer fault containment
  so.replicas = 3;
  so.webs = 3;
  ServerRig server = build_neat_server(tb, so);

  ClientOptions co;
  co.generators = 3;
  co.concurrency_per_gen = 24;
  ClientRig client = build_client(tb, co, 3);
  prepopulate_arp(server, client);

  std::printf("time[ms]  kreq/s  errors  conns(r0,r1,r2)\n");
  std::uint64_t last_reqs = 0, last_errs = 0;
  const sim::SimTime step = 25 * sim::kMillisecond;

  auto snapshot = [&] {
    std::uint64_t reqs = 0, errs = 0;
    for (auto& g : client.gens) {
      reqs += g->report().committed_requests;
      errs += g->report().error_conns;
    }
    std::printf("%7.0f %8.1f %7llu  (%zu, %zu, %zu)%s\n",
                sim::to_millis(tb.sim.now()),
                static_cast<double>(reqs - last_reqs) /
                    sim::to_seconds(step) / 1000.0,
                (unsigned long long)(errs - last_errs),
                server.neat->replica(0).tcp().connection_count(),
                server.neat->replica(1).tcp().connection_count(),
                server.neat->replica(2).tcp().connection_count(),
                server.neat->replica(0).tcp_process().crashed()
                    ? "   <- replica 0 down"
                    : "");
    last_reqs = reqs;
    last_errs = errs;
  };

  // Warm up to steady state.
  tb.sim.run_for(150 * sim::kMillisecond);
  for (auto& g : client.gens) g->mark();
  for (int i = 0; i < 4; ++i) {
    tb.sim.run_for(step);
    snapshot();
  }

  std::printf("--- injecting a fault into replica 0's TCP component ---\n");
  const auto victim_conns = server.neat->replica(0).tcp().connection_count();
  server.neat->inject_crash(server.neat->replica(0), Component::kTcp);

  for (int i = 0; i < 10; ++i) {
    tb.sim.run_for(step);
    snapshot();
  }

  const auto& ev = server.neat->recovery_log().back();
  std::printf("\nrecovery report:\n");
  std::printf("  component crashed   : %s\n", ev.component.c_str());
  std::printf("  connections lost    : %llu (replica 0's %zu only — "
              "replicas 1 and 2 kept every connection)\n",
              (unsigned long long)ev.connections_lost, victim_conns);
  std::printf("  replica 0 recovered : accepted %llu new connections since "
              "restart\n",
              (unsigned long long)
                  server.neat->replica(0).tcp().stats().conns_accepted);
  return 0;
}
