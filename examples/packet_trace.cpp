// Packet trace: the life of one HTTP request, frame by frame.
//
// Attaches a tap to the 10G link and decodes every Ethernet/IP/TCP frame a
// single keep-alive HTTP exchange produces — handshake, request, response,
// acks, and the orderly close. A compact way to see that the packets on
// this simulated wire are real, checksummed wire-format bytes.
//
//   $ ./examples/packet_trace
#include <cstdio>
#include <string>

#include "harness/testbed.hpp"
#include "net/ethernet.hpp"
#include "net/wire.hpp"

using namespace neat;
using namespace neat::harness;

namespace {

void decode_and_print(const Testbed& tb, const nic::Nic& from,
                      const net::Packet& frame, sim::SimTime now) {
  const auto b = frame.bytes();
  if (b.size() < net::EthernetHeader::kSize) return;
  const char* dir = from.ip() == kServerIp ? "server -> client"
                                           : "client -> server";
  const std::uint16_t ethertype = net::get_u16(b, 12);
  if (ethertype == static_cast<std::uint16_t>(net::EtherType::kArp)) {
    std::printf("[%9.3f us] %s  ARP %s\n", sim::to_micros(now), dir,
                net::get_u16(b, 20) == 1 ? "request (broadcast)" : "reply");
    return;
  }
  const std::size_t ip = net::EthernetHeader::kSize;
  if (b[ip + 9] != 6) return;  // TCP only
  const std::size_t ihl = static_cast<std::size_t>(b[ip] & 0x0f) * 4;
  const std::size_t t = ip + ihl;
  const std::uint8_t flags = b[t + 13];
  const std::uint16_t total_len = net::get_u16(b, ip + 2);
  const std::size_t tcp_hlen = static_cast<std::size_t>(b[t + 12] >> 4) * 4;
  const std::size_t payload = total_len - ihl - tcp_hlen;

  std::string f;
  if (flags & 0x02) f += "SYN ";
  if (flags & 0x10) f += "ACK ";
  if (flags & 0x01) f += "FIN ";
  if (flags & 0x04) f += "RST ";
  if (flags & 0x08) f += "PSH ";
  std::printf("[%9.3f us] %s  TCP %u -> %u  %-16s seq=%-10u ack=%-10u "
              "win=%-5u %zuB payload\n",
              sim::to_micros(now), dir, net::get_u16(b, t),
              net::get_u16(b, t + 2), f.c_str(), net::get_u32(b, t + 4),
              net::get_u32(b, t + 8), net::get_u16(b, t + 14), payload);
  (void)tb;
}

}  // namespace

int main() {
  Testbed::Config cfg;
  cfg.seed = 4;
  Testbed tb(cfg);

  NeatServerOptions so;
  so.replicas = 1;
  so.webs = 1;
  so.files = {{"/hello", 20}};
  ServerRig server = build_neat_server(tb, so);

  ClientOptions co;
  co.generators = 1;
  co.concurrency_per_gen = 1;  // exactly one connection
  co.requests_per_conn = 1;    // one request, then close
  co.max_conns = 1;
  co.path = "/hello";
  ClientRig client = build_client(tb, co, 1);
  prepopulate_arp(server, client);

  std::printf("one HTTP request for a 20-byte file, on the wire:\n\n");
  tb.link.set_tap([&](const nic::Nic& from, const net::Packet& frame) {
    decode_and_print(tb, from, frame, tb.sim.now());
  });

  tb.sim.run_for(800 * sim::kMillisecond);

  std::uint64_t reqs = client.gens[0]->report().committed_requests;
  std::printf("\nrequests completed: %llu, mean latency %.1f us\n",
              (unsigned long long)reqs,
              client.gens[0]->report().latency.mean() / 1000.0);
  return reqs == 1 ? 0 : 1;
}
